#include "src/obs/flight_recorder.h"

#include <cstdio>

namespace wvote {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string DumpFlightRecord(const TimeSeriesStore& store, const SloEngine* slo,
                             const std::vector<std::string>& trace_tail,
                             size_t last_windows) {
  char buf[48];
  std::string out = "{\"last_windows\":";
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(last_windows));
  out += buf;
  out += ",\"timeseries\":";
  out += store.ExportJson(last_windows);
  out += ",\"slo_events\":";
  out += slo != nullptr ? slo->EventsJson() : "[]";
  out += ",\"trace_tail\":[";
  for (size_t i = 0; i < trace_tail.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"' + JsonEscape(trace_tail[i]) + '"';
  }
  out += "]}";
  return out;
}

}  // namespace wvote
