// Sim-time time-series: ring-buffered windows sampled from a
// MetricsRegistry at a fixed sim-time resolution.
//
// The Scraper turns the registry's point-in-time metrics into per-window
// series: counters become per-window deltas (a rate, in events per window),
// gauges are sampled, histograms become windowed sketches (count / p50 /
// p99 / max over just that window, via bucket-wise subtraction). Windows
// live in the TimeSeriesStore's fixed-capacity rings, so memory stays
// constant however long the run; exports and the flight recorder read the
// tail.
//
// Determinism contract: scraping only READS registered sources. The scraper
// is driven by the simulator's metronome (see Simulator::SetMetronome),
// which consumes no event nodes and no sequence numbers — a run with
// scraping enabled executes the exact same event schedule as one without,
// so golden replay pins stay bit-exact.
//
// Layering: obs is a leaf library. The scraper takes plain TimePoints; the
// component that owns both a Simulator and a registry (Cluster, chaos
// runner) wires ScrapeAt into the metronome.

#ifndef WVOTE_SRC_OBS_TIMESERIES_H_
#define WVOTE_SRC_OBS_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/obs/metrics.h"

namespace wvote {

enum class SeriesKind {
  kCounterDelta,  // per-window increase of a monotone counter
  kGauge,         // value sampled at the window end
  kHistogram,     // windowed sketch of a latency histogram
};

const char* SeriesKindName(SeriesKind kind);

// One histogram window: the samples recorded during that window only.
// Percentiles are bucket lower bounds (see LatencyHistogram::DeltaSince).
struct HistPoint {
  uint64_t count = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;
};

// Fixed-capacity ring-buffered series, keyed like MetricsSnapshot
// ("name{label=value,...}"). Windows are sealed in time order; every
// series is tail-aligned to the latest sealed window (a series registered
// mid-run simply has fewer points, all at the tail).
class TimeSeriesStore {
 public:
  struct Series {
    std::string key;
    SeriesKind kind;

   private:
    friend class TimeSeriesStore;
    std::vector<double> vals;       // kCounterDelta / kGauge
    std::vector<HistPoint> hists;   // kHistogram
    size_t head = 0;                // next write slot
    size_t size = 0;
  };

  explicit TimeSeriesStore(size_t capacity = 512);

  size_t capacity() const { return capacity_; }
  // Total windows ever sealed (monotone; only the last `capacity` are kept).
  uint64_t windows_sealed() const { return windows_; }
  int64_t resolution_us() const { return resolution_us_; }
  void set_resolution_us(int64_t us) { resolution_us_ = us; }

  // Get-or-create; the returned pointer is stable for the store's lifetime.
  // Asserts the kind matches on re-lookup.
  Series* GetOrCreate(const std::string& key, SeriesKind kind);

  void Push(Series* series, double value);
  void PushHist(Series* series, const HistPoint& point);
  // Seals the current window at sim time `t_end_us`. Call once per scrape,
  // after every series has been pushed. Times are recorded per window, so
  // exports stay honest when the metronome skips deadlines across idle gaps.
  void SealWindow(int64_t t_end_us);

  // Chronological tail (oldest first) of one exact key; empty if absent.
  std::vector<double> Tail(const std::string& key, size_t last_n) const;
  std::vector<HistPoint> HistTail(const std::string& key, size_t last_n) const;

  // Per-window sum across every value series whose metric name (the part
  // before '{') equals `name`, tail-aligned; length is the longest matching
  // series (capped at last_n), shorter series contribute 0 to older windows.
  std::vector<double> SumTail(const std::string& name, size_t last_n) const;
  // Like SumTail but taking the per-window max across label variants — the
  // right aggregate for share/ratio gauges where summing across clients is
  // meaningless.
  std::vector<double> MaxTail(const std::string& name, size_t last_n) const;
  // Histogram aggregate across label variants: counts sum, p50/p99/max take
  // the per-window max (conservative for limit rules).
  std::vector<HistPoint> SumHistTail(const std::string& name, size_t last_n) const;

  // Window end times (us, oldest first) for the last `last_n` windows.
  std::vector<int64_t> TimesTail(size_t last_n) const;

  // {"resolution_us":...,"windows_sealed":...,"t_us":[...],
  //  "series":{"key":{"kind":"counter_delta","points":[...]},...}}
  // Histogram points export as {"n":..,"p50_us":..,"p99_us":..,"max_us":..}.
  std::string ExportJson(size_t last_n) const;

 private:
  size_t capacity_;
  int64_t resolution_us_ = 0;
  uint64_t windows_ = 0;
  std::vector<int64_t> times_;
  size_t times_head_ = 0;
  size_t times_size_ = 0;
  // unique_ptr for pointer stability; map for sorted, deterministic export.
  std::map<std::string, std::unique_ptr<Series>> series_;
};

// Terminal sparkline of `values` scaled to its own min..max, one glyph per
// window (▁▂▃▄▅▆▇█); flat series render as all-▁, empty input as "".
std::string Sparkline(const std::vector<double>& values);

struct ScraperOptions {
  // Sim-time window width. 10ms keeps quorum-scale dynamics visible while
  // staying far below 1% of bench wall time (see bench_trace_overhead).
  Duration resolution = Duration::Millis(10);
  size_t window_capacity = 512;
  // Metric names (before '{') never sampled. sim.events_per_sec reads the
  // wall clock, so it must stay out of anything deterministic.
  std::vector<std::string> exclude = {"sim.events_per_sec"};
};

// Samples a MetricsRegistry into a TimeSeriesStore. Builds a flat sampling
// plan over the registry's sources (no map lookups or string building per
// scrape) and rebuilds it whenever the registry grows; per-window counter
// deltas survive rebuilds (carried over by key).
class Scraper {
 public:
  explicit Scraper(const MetricsRegistry* registry, ScraperOptions options = {});

  // Samples every non-excluded source and seals one window ending at `now`.
  // Pure observer: never mutates the registry or its sources, safe to call
  // from a Simulator metronome hook.
  void ScrapeAt(TimePoint now);

  TimeSeriesStore& store() { return store_; }
  const TimeSeriesStore& store() const { return store_; }
  const ScraperOptions& options() const { return options_; }
  uint64_t scrapes() const { return scrapes_; }

  // Called after each sealed window (e.g. the SLO engine). Observers must
  // not mutate the registry.
  using Observer = std::function<void(TimePoint, const TimeSeriesStore&)>;
  void AddObserver(Observer observer) { observers_.push_back(std::move(observer)); }

 private:
  void RebuildPlan();
  bool Excluded(const std::string& key) const;

  struct CounterPlan {
    TimeSeriesStore::Series* series;
    std::vector<const uint64_t*> sources;  // same-key sources sum
    uint64_t prev = 0;
  };
  struct GaugePlan {
    TimeSeriesStore::Series* series;
    std::vector<const std::function<double()>*> sources;
  };
  struct HistogramPlan {
    TimeSeriesStore::Series* series;
    std::vector<const LatencyHistogram*> sources;
    LatencyHistogram prev;     // merged state at the last scrape
    LatencyHistogram scratch;  // merged state this scrape (reused allocation)
  };

  const MetricsRegistry* registry_;
  ScraperOptions options_;
  TimeSeriesStore store_;
  size_t planned_metrics_ = static_cast<size_t>(-1);
  std::vector<CounterPlan> counters_;
  std::vector<GaugePlan> gauges_;
  std::vector<HistogramPlan> histograms_;
  std::vector<Observer> observers_;
  uint64_t scrapes_ = 0;
};

}  // namespace wvote

#endif  // WVOTE_SRC_OBS_TIMESERIES_H_
