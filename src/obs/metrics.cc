#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace wvote {
namespace {

// Minimal JSON string escaping; metric keys are printable by construction
// but label values come from host/suite names, so be safe.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

HistogramSnapshot SnapshotOf(const LatencyHistogram& h) {
  HistogramSnapshot out;
  out.count = h.count();
  out.mean_us = h.Mean().ToMicros();
  out.p50_us = h.Percentile(50).ToMicros();
  out.p99_us = h.Percentile(99).ToMicros();
  out.min_us = h.Min().ToMicros();
  out.max_us = h.Max().ToMicros();
  return out;
}

}  // namespace

std::string RenderMetricKey(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string key = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {  // std::map iterates in sorted key order
    if (!first) {
      key += ',';
    }
    first = false;
    key += k;
    key += '=';
    key += v;
  }
  key += '}';
  return key;
}

uint64_t MetricsSnapshot::counter(const std::string& key) const {
  auto it = counters.find(key);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& key) const {
  auto it = gauges.find(key);
  return it == gauges.end() ? 0.0 : it->second;
}

uint64_t MetricsSnapshot::SumCounters(const std::string& name) const {
  uint64_t total = 0;
  for (const auto& [key, value] : counters) {
    const size_t brace = key.find('{');
    const std::string base = brace == std::string::npos ? key : key.substr(0, brace);
    if (base == name) {
      total += value;
    }
  }
  return total;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [key, value] : counters) {
    const uint64_t before = base.counter(key);
    out.counters[key] = value >= before ? value - before : 0;
  }
  out.gauges = gauges;
  for (const auto& [key, value] : histograms) {
    HistogramSnapshot d = value;
    auto it = base.histograms.find(key);
    if (it != base.histograms.end() && it->second.count <= d.count) {
      d.count -= it->second.count;
    }
    out.histograms[key] = d;
  }
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[192];
  for (const auto& [key, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%s %llu\n", key.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [key, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "%s %g\n", key.c_str(), value);
    out += buf;
  }
  for (const auto& [key, h] : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%s n=%llu mean_us=%lld p50_us=%lld p99_us=%lld max_us=%lld\n", key.c_str(),
                  static_cast<unsigned long long>(h.count), static_cast<long long>(h.mean_us),
                  static_cast<long long>(h.p50_us), static_cast<long long>(h.p99_us),
                  static_cast<long long>(h.max_us));
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  char buf[160];
  for (const auto& [key, value] : counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(key) + "\":";
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, value] : gauges) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(key) + "\":";
    std::snprintf(buf, sizeof(buf), "%g", value);
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"mean_us\":%lld,\"p50_us\":%lld,\"p99_us\":%lld,"
                  "\"min_us\":%lld,\"max_us\":%lld}",
                  static_cast<unsigned long long>(h.count), static_cast<long long>(h.mean_us),
                  static_cast<long long>(h.p50_us), static_cast<long long>(h.p99_us),
                  static_cast<long long>(h.min_us), static_cast<long long>(h.max_us));
    out += '"' + JsonEscape(key) + "\":" + buf;
  }
  out += "}}";
  return out;
}

uint64_t* MetricsRegistry::Counter(const std::string& name, const MetricLabels& labels) {
  const std::string key = RenderMetricKey(name, labels);
  auto it = owned_counter_index_.find(key);
  if (it != owned_counter_index_.end()) {
    return it->second;
  }
  owned_counters_.push_back(0);
  uint64_t* slot = &owned_counters_.back();
  owned_counter_index_[key] = slot;
  counter_sources_.push_back({key, slot});
  return slot;
}

double* MetricsRegistry::Gauge(const std::string& name, const MetricLabels& labels) {
  const std::string key = RenderMetricKey(name, labels);
  auto it = owned_gauge_index_.find(key);
  if (it != owned_gauge_index_.end()) {
    return it->second;
  }
  owned_gauges_.push_back(0.0);
  double* slot = &owned_gauges_.back();
  owned_gauge_index_[key] = slot;
  gauge_sources_.push_back({key, [slot]() { return *slot; }});
  return slot;
}

LatencyHistogram* MetricsRegistry::Histogram(const std::string& name,
                                             const MetricLabels& labels) {
  const std::string key = RenderMetricKey(name, labels);
  auto it = owned_histogram_index_.find(key);
  if (it != owned_histogram_index_.end()) {
    return it->second;
  }
  owned_histograms_.emplace_back();
  LatencyHistogram* slot = &owned_histograms_.back();
  owned_histogram_index_[key] = slot;
  histogram_sources_.push_back({key, slot});
  return slot;
}

void MetricsRegistry::RegisterCounter(const std::string& name, const MetricLabels& labels,
                                      const uint64_t* source) {
  counter_sources_.push_back({RenderMetricKey(name, labels), source});
}

void MetricsRegistry::RegisterGauge(const std::string& name, const MetricLabels& labels,
                                    std::function<double()> source) {
  gauge_sources_.push_back({RenderMetricKey(name, labels), std::move(source)});
}

void MetricsRegistry::RegisterHistogram(const std::string& name, const MetricLabels& labels,
                                        const LatencyHistogram* source) {
  histogram_sources_.push_back({RenderMetricKey(name, labels), source});
}

void MetricsRegistry::AddResetHook(std::function<void()> hook) {
  reset_hooks_.push_back(std::move(hook));
}

void MetricsRegistry::Reset() {
  for (uint64_t& c : owned_counters_) {
    c = 0;
  }
  for (double& g : owned_gauges_) {
    g = 0.0;
  }
  for (LatencyHistogram& h : owned_histograms_) {
    h.Reset();
  }
  for (const auto& hook : reset_hooks_) {
    hook();
  }
}

size_t MetricsRegistry::num_metrics() const {
  return counter_sources_.size() + gauge_sources_.size() + histogram_sources_.size();
}

bool MetricsRegistry::Contains(const std::string& name, const MetricLabels& labels) const {
  const std::string key = RenderMetricKey(name, labels);
  auto match = [&key](const auto& entry) { return entry.key == key; };
  return std::any_of(counter_sources_.begin(), counter_sources_.end(), match) ||
         std::any_of(gauge_sources_.begin(), gauge_sources_.end(), match) ||
         std::any_of(histogram_sources_.begin(), histogram_sources_.end(), match);
}

void MetricsRegistry::VisitCounterSources(
    const std::function<void(const std::string&, const uint64_t*)>& fn) const {
  for (const CounterSource& c : counter_sources_) {
    fn(c.key, c.source);
  }
}

void MetricsRegistry::VisitGaugeSources(
    const std::function<void(const std::string&, const std::function<double()>*)>& fn) const {
  for (const GaugeSource& g : gauge_sources_) {
    fn(g.key, &g.source);
  }
}

void MetricsRegistry::VisitHistogramSources(
    const std::function<void(const std::string&, const LatencyHistogram*)>& fn) const {
  for (const HistogramSource& h : histogram_sources_) {
    fn(h.key, h.source);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  for (const CounterSource& c : counter_sources_) {
    out.counters[c.key] += *c.source;
  }
  for (const GaugeSource& g : gauge_sources_) {
    out.gauges[g.key] += g.source();
  }
  // Same-key histograms merge before summarizing, so percentiles of the
  // aggregate are computed over the union of samples.
  std::map<std::string, LatencyHistogram> merged;
  for (const HistogramSource& h : histogram_sources_) {
    merged[h.key].MergeFrom(*h.source);
  }
  for (const auto& [key, hist] : merged) {
    out.histograms[key] = SnapshotOf(hist);
  }
  return out;
}

}  // namespace wvote
