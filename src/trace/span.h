// Causal request tracing: span trees across client, RPC, txn, and storage.
//
// A Tracer complements the flat TraceLog event ring with *causal* structure:
// every client Read/Write opens a root span carrying a unique trace id, and
// that id rides the RPC envelope so the coordinator, participants, lock
// waits, stable-store flushes, and background phase-2 work all record child
// spans. A span has begin/end timestamps (simulated time) plus a free-form
// annotation ("votes=2/2 rounds=1", "batch=7 leader", ...), so a single
// trace answers "why did this write take 121 ms" with per-phase attribution
// instead of aggregate counters.
//
// Cost model: the tracer ships disabled. Every Start* checks `enabled_`
// first and the arguments are views/integers, so a disabled tracer — like a
// null TraceLog — costs one predictable branch per call site and never
// allocates. Enabled spans cost one map insert at start and one ring write
// at end; completed spans recycle a bounded ring (default 64Ki spans).
//
// Well-known span names (phase.* feed same-named trace.phase.* histograms
// in the MetricsRegistry; client.read/client.write feed trace.op.*):
//   client.read / client.write    root, one per client op (incl. retries)
//   client.txn                    one attempt: Begin..Commit/Abort
//   phase.gather                  version probes until quorum (votes/rounds)
//   phase.fetch                   read-path data fetch from the best rep
//   phase.prepare                 phase 1: PrepareReq fan-out
//   phase.disk                    stable-store write (group-commit batch id)
//   phase.commit_ack              phase 2 as seen by the client-facing path
//   phase.lock_wait               parked in the lock manager (key, mode)
//   phase2.background             async phase-2 fan-out after the ack
//   phase2.retrier                per-participant commit retry loop
//   rpc.<Req> / handle.<Req>      client / server side of one RPC
//
// Export: ExportChromeTrace() emits Chrome-trace-event JSON ("X" complete
// events; pid = host, tid = trace id) loadable in chrome://tracing or
// Perfetto. SetSlowOpLog() dumps the full tree of any root span exceeding a
// threshold into the TraceLog as a kSlowOp event.

#ifndef WVOTE_SRC_TRACE_SPAN_H_
#define WVOTE_SRC_TRACE_SPAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/net/message.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"
#include "src/trace/trace.h"

namespace wvote {

// The piece of a trace that travels with a request: which trace this work
// belongs to and which span is the causal parent. Invalid (trace_id == 0)
// contexts — from a disabled tracer or an untraced entry point — make every
// downstream tracing call a no-op, so call sites never test for tracing.
//
// User-declared constructors on purpose: TraceContext is passed by value
// into coroutines, and braced aggregate prvalues crossing a coroutine
// boundary miscompile under GCC 12 (rule 1 in src/sim/task.h).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  TraceContext() {}
  TraceContext(uint64_t trace, uint64_t span) : trace_id(trace), span_id(span) {}

  bool valid() const { return trace_id != 0; }
};

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 for roots
  HostId host = kInvalidHost;
  std::string name;
  TimePoint begin;
  TimePoint end;
  bool open = false;  // still running when snapshotted
  std::string annotation;

  Duration duration() const { return end - begin; }
};

class Tracer {
 public:
  explicit Tracer(Simulator* sim, size_t capacity = 65536);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Starts a root span (invalid context when disabled) / a child span
  // (no-op when the parent is invalid). Names should be string literals or
  // otherwise outlive the call; they are copied only on the enabled path.
  TraceContext StartRoot(HostId host, std::string_view name);
  TraceContext StartChild(const TraceContext& parent, HostId host, std::string_view name);

  // Appends `note` to the open span's annotation ("; "-separated).
  void Annotate(const TraceContext& ctx, std::string_view note);

  void End(const TraceContext& ctx);
  void EndWith(const TraceContext& ctx, std::string_view note);

  // Creates the trace.phase.* / trace.op.* histograms and trace.tracer.*
  // counters in `metrics`; subsequent span ends feed them by span name.
  void RegisterMetrics(MetricsRegistry* metrics);

  // Any root span whose duration reaches `threshold` dumps its full tree
  // into `log` as a kSlowOp event.
  void SetSlowOpLog(TraceLog* log, Duration threshold);

  // Used by exports to print "rep-a" instead of a bare host id.
  void SetHostNamer(std::function<std::string(HostId)> namer);

  // Completed spans (ring order) followed by still-open spans (marked
  // open, end = now), both filtered/whole-trace variants.
  std::vector<Span> Snapshot() const;
  std::vector<Span> SpansOf(uint64_t trace_id) const;

  uint64_t spans_started() const { return spans_started_; }
  uint64_t spans_completed() const { return spans_completed_; }

  // Indented tree of one trace, for slow-op logs and debugging.
  std::string DumpTree(uint64_t trace_id) const;

  // Chrome-trace-event JSON: {"traceEvents":[...]} with one "X" event per
  // span and process_name metadata per host. Loadable in chrome://tracing.
  std::string ExportChromeTrace(int pid_base = 0) const;

  // Appends this tracer's events (comma-separated, honoring *first) to an
  // in-progress traceEvents array; `tag` prefixes process names so several
  // clusters/scenarios can share one file. Returns the largest pid used.
  int AppendChromeEvents(std::string* out, bool* first, int pid_base,
                         std::string_view tag) const;

  void Clear();

 private:
  void Complete(Span span);
  std::string HostName(HostId host) const;
  void AppendChromeEvent(const Span& span, int pid_base, std::string_view tag,
                         std::string* out, bool* first) const;

  Simulator* sim_;
  bool enabled_ = false;
  uint64_t next_id_ = 1;

  std::vector<Span> ring_;
  size_t next_slot_ = 0;
  uint64_t spans_started_ = 0;
  uint64_t spans_completed_ = 0;
  uint64_t slow_ops_ = 0;
  std::unordered_map<uint64_t, Span> open_;

  MetricsRegistry* metrics_ = nullptr;
  std::unordered_map<std::string, LatencyHistogram*> hist_by_name_;

  TraceLog* slow_log_ = nullptr;
  Duration slow_threshold_ = Duration::Micros(0);

  std::function<std::string(HostId)> host_namer_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_TRACE_SPAN_H_
