#include "src/trace/trace.h"

#include <algorithm>
#include <cstdio>

namespace wvote {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kMessageDropped:
      return "message-dropped";
    case TraceKind::kHostCrashed:
      return "host-crashed";
    case TraceKind::kHostRestarted:
      return "host-restarted";
    case TraceKind::kTxnPrepared:
      return "txn-prepared";
    case TraceKind::kTxnCommitted:
      return "txn-committed";
    case TraceKind::kTxnAborted:
      return "txn-aborted";
    case TraceKind::kRecoveryStarted:
      return "recovery-started";
    case TraceKind::kInDoubtResolved:
      return "in-doubt-resolved";
    case TraceKind::kQuorumFailed:
      return "quorum-failed";
    case TraceKind::kRefreshInstalled:
      return "refresh-installed";
    case TraceKind::kReconfigured:
      return "reconfigured";
    case TraceKind::kPhase2Completed:
      return "phase2-completed";
    case TraceKind::kDecisionLogged:
      return "decision-logged";
    case TraceKind::kSlowOp:
      return "slow-op";
    case TraceKind::kSloBreach:
      return "slo-breach";
    case TraceKind::kSloRecovered:
      return "slo-recovered";
    case TraceKind::kCustom:
      return "custom";
    case TraceKind::kNumKinds:
      break;
  }
  return "?";
}

TraceLog::TraceLog(Simulator* sim, size_t capacity) : sim_(sim), ring_(capacity) {}

void TraceLog::Record(HostId host, TraceKind kind, std::string detail) {
  static_assert(sizeof(counts_) / sizeof(counts_[0]) == kNumTraceKinds,
                "counts_ must have one slot per TraceKind enumerator");
  TraceEvent& slot = ring_[next_];
  slot.at = sim_->Now();
  slot.host = host;
  slot.kind = kind;
  slot.detail = std::move(detail);
  next_ = (next_ + 1) % ring_.size();
  ++total_recorded_;
  ++counts_[static_cast<size_t>(kind)];
  if (!observers_.empty()) {
    // Notify from a copy: a re-entrant Record from an observer (Crash ->
    // kHostCrashed) may advance the ring into this slot.
    const TraceEvent copy = slot;
    for (const auto& observer : observers_) {
      observer(copy);
    }
  }
}

void TraceLog::AddObserver(std::function<void(const TraceEvent&)> observer) {
  observers_.push_back(std::move(observer));
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  std::vector<TraceEvent> out;
  const uint64_t kept = std::min<uint64_t>(total_recorded_, ring_.size());
  out.reserve(kept);
  // Oldest retained entry sits at next_ once the ring has wrapped.
  const size_t start = (total_recorded_ >= ring_.size()) ? next_ : 0;
  for (uint64_t i = 0; i < kept; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceLog::ForHost(HostId host) const {
  std::vector<TraceEvent> out;
  for (TraceEvent& ev : Snapshot()) {
    if (ev.host == host) {
      out.push_back(std::move(ev));
    }
  }
  return out;
}

std::vector<TraceEvent> TraceLog::OfKind(TraceKind kind) const {
  std::vector<TraceEvent> out;
  for (TraceEvent& ev : Snapshot()) {
    if (ev.kind == kind) {
      out.push_back(std::move(ev));
    }
  }
  return out;
}

uint64_t TraceLog::CountOf(TraceKind kind) const {
  return counts_[static_cast<size_t>(kind)];
}

std::string TraceLog::Dump(size_t max_lines) const {
  std::vector<TraceEvent> events = Snapshot();
  const size_t begin = events.size() > max_lines ? events.size() - max_lines : 0;
  std::string out;
  for (size_t i = begin; i < events.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line), "%10.3fms host=%-3d %-18s %s\n",
                  static_cast<double>(events[i].at.ToMicros()) / 1000.0, events[i].host,
                  TraceKindName(events[i].kind), events[i].detail.c_str());
    out += line;
  }
  return out;
}

void TraceLog::Clear() {
  for (TraceEvent& ev : ring_) {
    ev = TraceEvent{};
  }
  next_ = 0;
  total_recorded_ = 0;
  std::fill(std::begin(counts_), std::end(counts_), 0);
}

}  // namespace wvote
