#include "src/trace/span.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace wvote {
namespace {

// Minimal JSON string escaping for span names/annotations/host names.
void AppendJsonEscaped(std::string_view in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer(Simulator* sim, size_t capacity) : sim_(sim), ring_(capacity) {}

TraceContext Tracer::StartRoot(HostId host, std::string_view name) {
  if (!enabled_) {
    return TraceContext();
  }
  const uint64_t id = next_id_++;
  Span span;
  span.trace_id = id;
  span.span_id = id;
  span.parent_id = 0;
  span.host = host;
  span.name = std::string(name);
  span.begin = sim_->Now();
  ++spans_started_;
  open_.emplace(id, std::move(span));
  return TraceContext(id, id);
}

TraceContext Tracer::StartChild(const TraceContext& parent, HostId host,
                                std::string_view name) {
  if (!enabled_ || !parent.valid()) {
    return TraceContext();
  }
  const uint64_t id = next_id_++;
  Span span;
  span.trace_id = parent.trace_id;
  span.span_id = id;
  span.parent_id = parent.span_id;
  span.host = host;
  span.name = std::string(name);
  span.begin = sim_->Now();
  ++spans_started_;
  open_.emplace(id, std::move(span));
  return TraceContext(parent.trace_id, id);
}

void Tracer::Annotate(const TraceContext& ctx, std::string_view note) {
  if (!ctx.valid()) {
    return;
  }
  auto it = open_.find(ctx.span_id);
  if (it == open_.end()) {
    return;
  }
  if (!it->second.annotation.empty()) {
    it->second.annotation += "; ";
  }
  it->second.annotation += note;
}

void Tracer::End(const TraceContext& ctx) {
  if (!ctx.valid()) {
    return;
  }
  auto it = open_.find(ctx.span_id);
  if (it == open_.end()) {
    return;  // already ended, or evicted by Clear()
  }
  Span span = std::move(it->second);
  open_.erase(it);
  span.end = sim_->Now();
  Complete(std::move(span));
}

void Tracer::EndWith(const TraceContext& ctx, std::string_view note) {
  Annotate(ctx, note);
  End(ctx);
}

void Tracer::Complete(Span span) {
  ++spans_completed_;
  if (metrics_ != nullptr) {
    auto it = hist_by_name_.find(span.name);
    if (it != hist_by_name_.end()) {
      it->second->Record(span.duration());
    }
  }
  if (slow_log_ != nullptr && span.parent_id == 0 &&
      span.duration() >= slow_threshold_) {
    ++slow_ops_;
    char head[128];
    std::snprintf(head, sizeof(head), "%s took %.3fms trace=%llu\n",
                  span.name.c_str(), span.duration().ToMillis(),
                  static_cast<unsigned long long>(span.trace_id));
    // The root must be visible to DumpTree, so stash it first.
    const uint64_t trace_id = span.trace_id;
    const HostId host = span.host;
    ring_[next_slot_] = std::move(span);
    next_slot_ = (next_slot_ + 1) % ring_.size();
    slow_log_->Record(host, TraceKind::kSlowOp, head + DumpTree(trace_id));
    return;
  }
  ring_[next_slot_] = std::move(span);
  next_slot_ = (next_slot_ + 1) % ring_.size();
}

void Tracer::RegisterMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  hist_by_name_.clear();
  // Phase spans map to same-named histograms; client roots to trace.op.*.
  const std::pair<const char*, const char*> kMapping[] = {
      {"phase.gather", "trace.phase.gather"},
      {"phase.fetch", "trace.phase.fetch"},
      {"phase.prepare", "trace.phase.prepare"},
      {"phase.commit_ack", "trace.phase.commit_ack"},
      {"phase.lock_wait", "trace.phase.lock_wait"},
      {"phase.disk", "trace.phase.disk"},
      {"client.read", "trace.op.read"},
      {"client.write", "trace.op.write"},
  };
  for (const auto& [span_name, metric_name] : kMapping) {
    hist_by_name_[span_name] = metrics->Histogram(metric_name);
  }
  metrics->RegisterCounter("trace.tracer.spans_started", {}, &spans_started_);
  metrics->RegisterCounter("trace.tracer.spans_completed", {}, &spans_completed_);
  metrics->RegisterCounter("trace.tracer.slow_ops", {}, &slow_ops_);
}

void Tracer::SetSlowOpLog(TraceLog* log, Duration threshold) {
  slow_log_ = log;
  slow_threshold_ = threshold;
}

void Tracer::SetHostNamer(std::function<std::string(HostId)> namer) {
  host_namer_ = std::move(namer);
}

std::vector<Span> Tracer::Snapshot() const {
  std::vector<Span> out;
  const uint64_t kept = std::min<uint64_t>(spans_completed_, ring_.size());
  out.reserve(kept + open_.size());
  const size_t start = (spans_completed_ >= ring_.size()) ? next_slot_ : 0;
  for (uint64_t i = 0; i < kept; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  // Open spans in span-id order (the map iterates in hash order, which
  // would make snapshots nondeterministic).
  std::vector<const Span*> still_open;
  still_open.reserve(open_.size());
  for (const auto& [id, span] : open_) {
    still_open.push_back(&span);
  }
  std::sort(still_open.begin(), still_open.end(),
            [](const Span* a, const Span* b) { return a->span_id < b->span_id; });
  for (const Span* span : still_open) {
    Span copy = *span;
    copy.open = true;
    copy.end = sim_->Now();
    out.push_back(std::move(copy));
  }
  return out;
}

std::vector<Span> Tracer::SpansOf(uint64_t trace_id) const {
  std::vector<Span> out;
  for (Span& span : Snapshot()) {
    if (span.trace_id == trace_id) {
      out.push_back(std::move(span));
    }
  }
  return out;
}

std::string Tracer::HostName(HostId host) const {
  if (host_namer_) {
    std::string name = host_namer_(host);
    if (!name.empty()) {
      return name;
    }
  }
  return "host-" + std::to_string(host);
}

std::string Tracer::DumpTree(uint64_t trace_id) const {
  std::vector<Span> spans = SpansOf(trace_id);
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.span_id < b.span_id;
  });
  std::map<uint64_t, std::vector<const Span*>> children;
  std::set<uint64_t> ids;
  for (const Span& span : spans) {
    ids.insert(span.span_id);
  }
  std::vector<const Span*> roots;
  for (const Span& span : spans) {
    if (span.parent_id != 0 && ids.count(span.parent_id) > 0) {
      children[span.parent_id].push_back(&span);
    } else {
      roots.push_back(&span);
    }
  }
  std::string out;
  // Recursive lambda via explicit self-parameter; depth bounded by tree
  // height (phases nest a handful deep).
  auto print = [&](const Span* span, int depth, auto&& self) -> void {
    char line[192];
    std::snprintf(line, sizeof(line), "%*s%s host=%s [%.3f..%.3fms] %.3fms%s",
                  depth * 2, "", span->name.c_str(), HostName(span->host).c_str(),
                  static_cast<double>(span->begin.ToMicros()) / 1000.0,
                  static_cast<double>(span->end.ToMicros()) / 1000.0,
                  span->duration().ToMillis(), span->open ? " (open)" : "");
    out += line;
    if (!span->annotation.empty()) {
      out += "  {" + span->annotation + "}";
    }
    out += "\n";
    auto it = children.find(span->span_id);
    if (it != children.end()) {
      for (const Span* child : it->second) {
        self(child, depth + 1, self);
      }
    }
  };
  for (const Span* root : roots) {
    print(root, 0, print);
  }
  return out;
}

void Tracer::AppendChromeEvent(const Span& span, int pid_base, std::string_view tag,
                               std::string* out, bool* first) const {
  if (!*first) {
    *out += ",\n";
  }
  *first = false;
  const int pid = pid_base + (span.host < 0 ? 0 : span.host) + 1;
  char head[192];
  std::snprintf(head, sizeof(head),
                "{\"name\":\"%s\",\"cat\":\"wvote\",\"ph\":\"X\",\"ts\":%lld,"
                "\"dur\":%lld,\"pid\":%d,\"tid\":%llu,\"args\":{",
                span.name.c_str(), static_cast<long long>(span.begin.ToMicros()),
                static_cast<long long>(std::max<int64_t>(span.duration().ToMicros(), 0)),
                pid, static_cast<unsigned long long>(span.trace_id));
  *out += head;
  char args[96];
  std::snprintf(args, sizeof(args), "\"span\":%llu,\"parent\":%llu",
                static_cast<unsigned long long>(span.span_id),
                static_cast<unsigned long long>(span.parent_id));
  *out += args;
  if (!span.annotation.empty()) {
    *out += ",\"note\":\"";
    AppendJsonEscaped(span.annotation, out);
    *out += "\"";
  }
  if (span.open) {
    *out += ",\"open\":true";
  }
  *out += "}}";
}

int Tracer::AppendChromeEvents(std::string* out, bool* first, int pid_base,
                               std::string_view tag) const {
  int max_pid = pid_base;
  std::set<HostId> hosts;
  std::vector<Span> spans = Snapshot();
  for (const Span& span : spans) {
    hosts.insert(span.host);
  }
  for (HostId host : hosts) {
    const int pid = pid_base + (host < 0 ? 0 : host) + 1;
    max_pid = std::max(max_pid, pid);
    if (!*first) {
      *out += ",\n";
    }
    *first = false;
    char head[96];
    std::snprintf(head, sizeof(head),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"",
                  pid);
    *out += head;
    if (!tag.empty()) {
      AppendJsonEscaped(tag, out);
      *out += "/";
    }
    AppendJsonEscaped(HostName(host), out);
    *out += "\"}}";
  }
  for (const Span& span : spans) {
    AppendChromeEvent(span, pid_base, tag, out, first);
    max_pid = std::max(max_pid, pid_base + (span.host < 0 ? 0 : span.host) + 1);
  }
  return max_pid;
}

std::string Tracer::ExportChromeTrace(int pid_base) const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  AppendChromeEvents(&out, &first, pid_base, "");
  out += "\n]}\n";
  return out;
}

void Tracer::Clear() {
  for (Span& span : ring_) {
    span = Span();
  }
  next_slot_ = 0;
  spans_started_ = 0;
  spans_completed_ = 0;
  slow_ops_ = 0;
  open_.clear();
  next_id_ = 1;
}

}  // namespace wvote
