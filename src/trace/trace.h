// Structured protocol tracing.
//
// A TraceLog is a bounded ring of timestamped protocol events — message
// drops, crashes and recoveries, prepares/commits/aborts, quorum failures —
// attached to a Network and shared by every component on it. It answers the
// debugging questions a distributed trace answers in production ("what was
// happening on rep-2 when the commit stalled?") and gives tests a way to
// assert on protocol-level behavior rather than only on end state.
//
// Recording is two appends and never allocates after construction; disabled
// (null) logs cost one branch.

#ifndef WVOTE_SRC_TRACE_TRACE_H_
#define WVOTE_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/net/message.h"
#include "src/sim/simulator.h"

namespace wvote {

enum class TraceKind : uint8_t {
  kMessageDropped,   // network drop (reason in detail)
  kHostCrashed,
  kHostRestarted,
  kTxnPrepared,      // participant voted yes
  kTxnCommitted,     // participant applied a commit
  kTxnAborted,       // participant aborted / released
  kRecoveryStarted,  // participant replaying its log
  kInDoubtResolved,  // decision inquiry answered
  kQuorumFailed,     // client could not gather enough votes
  kRefreshInstalled, // stale representative brought current
  kReconfigured,     // new prefix installed
  kPhase2Completed,  // background phase-2 fanout / retrier converged (txn in detail)
  kDecisionLogged,   // coordinator durably logged commit, phase 2 not yet sent
  kSlowOp,           // root span exceeded the slow-op threshold (tree in detail)
  kSloBreach,        // an SLO rule entered breach (rule + value in detail)
  kSloRecovered,     // an SLO rule recovered after its hysteresis window
  kCustom,
  kNumKinds,  // sentinel — keep last, never record
};

inline constexpr size_t kNumTraceKinds = static_cast<size_t>(TraceKind::kNumKinds);

const char* TraceKindName(TraceKind kind);

struct TraceEvent {
  TimePoint at;
  HostId host = kInvalidHost;
  TraceKind kind = TraceKind::kCustom;
  std::string detail;
};

class TraceLog {
 public:
  explicit TraceLog(Simulator* sim, size_t capacity = 4096);

  void Record(HostId host, TraceKind kind, std::string detail);

  // Events in chronological order (oldest retained first).
  std::vector<TraceEvent> Snapshot() const;
  std::vector<TraceEvent> ForHost(HostId host) const;
  std::vector<TraceEvent> OfKind(TraceKind kind) const;
  uint64_t CountOf(TraceKind kind) const;

  uint64_t total_recorded() const { return total_recorded_; }
  size_t capacity() const { return ring_.size(); }

  // Human-readable dump of the most recent `max_lines` events.
  std::string Dump(size_t max_lines = 50) const;

  void Clear();

  // Observers run synchronously inside Record(), after the event is in the
  // ring. The chaos nemesis uses this for phase-targeted fault injection
  // (crash a host the instant it records a protocol breadcrumb). Observers
  // may themselves cause recording (e.g. Crash -> kHostCrashed) — they are
  // re-entered for those events and must guard against recursion. Observers
  // cannot be removed; register once per run.
  void AddObserver(std::function<void(const TraceEvent&)> observer);

 private:
  Simulator* sim_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;
  uint64_t total_recorded_ = 0;
  std::vector<std::function<void(const TraceEvent&)>> observers_;
  uint64_t counts_[kNumTraceKinds] = {};
  static_assert(kNumTraceKinds <= 64,
                "TraceKind grew suspiciously large — audit counts_ sizing");
};

}  // namespace wvote

#endif  // WVOTE_SRC_TRACE_TRACE_H_
