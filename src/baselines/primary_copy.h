// Primary-copy replication (Stonebraker, distributed INGRES, 1979).
//
// All updates execute transactionally at one designated primary; backups are
// brought up to date asynchronously (here: via the conditional RefreshReq
// install, the same mechanism weighted voting uses for stale
// representatives). Reads either go to the primary (strictly consistent, but
// the primary is a single point of failure and a bottleneck) or to a chosen
// backup (cheap but possibly stale).
//
// This is the scheme weighted voting's vote/quorum tuning subsumes and
// improves on for availability: when the primary is down, primary-copy
// blocks entirely, while a voting configuration can keep serving.

#ifndef WVOTE_SRC_BASELINES_PRIMARY_COPY_H_
#define WVOTE_SRC_BASELINES_PRIMARY_COPY_H_

#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/workload/replicated_store.h"

namespace wvote {

enum class PrimaryCopyReadMode {
  kPrimary,      // strict: read at the primary
  kLocalBackup,  // stale-tolerant: lock-free read at the first backup
};

struct PrimaryCopyStats {
  uint64_t writes = 0;
  uint64_t reads_primary = 0;
  uint64_t reads_backup = 0;
  uint64_t propagations = 0;
  uint64_t stale_backup_reads = 0;  // backup read returned an older version

  void Reset() { *this = PrimaryCopyStats{}; }
  // Registers every field as `baseline.primary_copy.*{labels}`; this struct
  // must outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

class PrimaryCopyStore : public ReplicatedStore {
 public:
  // `client` must be a single-representative suite client whose one voting
  // representative is the primary (MakeUnreplicatedConfig). `backup_hosts`
  // receive asynchronous propagation.
  PrimaryCopyStore(SuiteClient* client, std::vector<HostId> backup_hosts,
                   PrimaryCopyReadMode read_mode = PrimaryCopyReadMode::kPrimary);

  Task<Result<std::string>> Read() override;
  Task<Status> Write(std::string contents) override;
  const char* SchemeName() const override { return "primary-copy"; }

  const PrimaryCopyStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Registers this store's counters, labeled by client host and suite.
  void RegisterMetrics(MetricsRegistry* registry);

 private:
  SuiteClient* client_;
  std::vector<HostId> backups_;
  PrimaryCopyReadMode read_mode_;
  Version last_written_version_ = 0;
  PrimaryCopyStats stats_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_BASELINES_PRIMARY_COPY_H_
