// Majority consensus with timestamps (after Thomas, 1979).
//
// The contemporaneous alternative Gifford cites: no locks and no version
// numbers — every copy carries a timestamp; a write stamps the new value
// with a globally unique timestamp and is accepted once a majority of
// replicas has applied it (a replica applies iff the stamp exceeds its
// stored stamp); a read queries a majority and returns the newest value.
// Timestamp order, not lock order, serializes writes (last-writer-wins).
//
// We implement the standard direct-majority formulation of Thomas's scheme
// (the original daisy-chains votes among the DBMPs; the quorum and
// timestamp-resolution behavior — what the comparison measures — is
// identical).
//
// Contrast with weighted voting: equal weights only, majority reads even
// for read-mostly data, and no transactional read-modify-write.

#ifndef WVOTE_SRC_BASELINES_MAJORITY_CONSENSUS_H_
#define WVOTE_SRC_BASELINES_MAJORITY_CONSENSUS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/rpc/rpc.h"
#include "src/storage/stable_store.h"
#include "src/workload/replicated_store.h"

namespace wvote {

// Messages (constructors per the GCC 12 rule in src/sim/task.h).
struct TsReadReq {
  std::string name;

  TsReadReq() = default;
  explicit TsReadReq(std::string n) : name(std::move(n)) {}
};
struct TsReadResp {
  uint64_t timestamp = 0;
  std::string contents;

  TsReadResp() = default;
  TsReadResp(uint64_t ts, std::string c) : timestamp(ts), contents(std::move(c)) {}
  size_t ApproxBytes() const { return 64 + contents.size(); }
};
struct TsWriteReq {
  std::string name;
  uint64_t timestamp = 0;
  std::string contents;

  TsWriteReq() = default;
  TsWriteReq(std::string n, uint64_t ts, std::string c)
      : name(std::move(n)), timestamp(ts), contents(std::move(c)) {}
  size_t ApproxBytes() const { return 64 + contents.size(); }
};
struct TsWriteResp {
  bool applied = false;

  TsWriteResp() = default;
  explicit TsWriteResp(bool a) : applied(a) {}
};

// One replica of the timestamped store; owns the host's inbox.
class TimestampServer {
 public:
  TimestampServer(Network* net, Host* host,
                  LatencyModel disk_write = LatencyModel::Fixed(Duration::Millis(10)),
                  LatencyModel disk_read = LatencyModel::Fixed(Duration::Millis(5)));

  Host* host() { return rpc_.host(); }

  // Committed {timestamp, contents} for tests/invariant checks.
  std::pair<uint64_t, std::string> Current(const std::string& name) const;

 private:
  RpcEndpoint rpc_;
  StableStore store_;
};

struct MajorityConsensusStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_quorum_failures = 0;
  uint64_t write_quorum_failures = 0;

  void Reset() { *this = MajorityConsensusStats{}; }
  // Registers every field as `baseline.majority_consensus.*{labels}`; this
  // struct must outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

// Client: majority reads and majority timestamped writes.
class MajorityConsensusStore : public ReplicatedStore {
 public:
  MajorityConsensusStore(RpcEndpoint* rpc, std::string name, std::vector<HostId> replicas,
                         Duration rpc_timeout = Duration::Seconds(2));

  Task<Result<std::string>> Read() override;
  Task<Status> Write(std::string contents) override;
  const char* SchemeName() const override { return "majority-consensus"; }

  const MajorityConsensusStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Registers this store's counters, labeled by client host and object name.
  void RegisterMetrics(MetricsRegistry* registry);

 private:
  uint64_t NextTimestamp();

  RpcEndpoint* rpc_;
  std::string name_;
  std::vector<HostId> replicas_;
  Duration rpc_timeout_;
  uint64_t last_ts_ = 0;
  MajorityConsensusStats stats_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_BASELINES_MAJORITY_CONSENSUS_H_
