// Degenerate vote assignments: the classical schemes as special cases.
//
// Gifford's observation: read-one/write-all, majority consensus, and an
// unreplicated file are all points in weighted voting's configuration space.
// These factories produce the corresponding SuiteConfigs so the comparison
// benches run every scheme through the identical machinery.

#ifndef WVOTE_SRC_BASELINES_CONFIGS_H_
#define WVOTE_SRC_BASELINES_CONFIGS_H_

#include <string>
#include <vector>

#include "src/core/suite_config.h"

namespace wvote {

// r=1, w=N over equal votes: cheapest reads, writes need every replica.
SuiteConfig MakeRowaConfig(std::string suite, std::vector<std::string> hosts);

// r=w=floor(N/2)+1 over equal votes.
SuiteConfig MakeMajorityConfig(std::string suite, std::vector<std::string> hosts);

// A single copy: votes <1>, r=w=1.
SuiteConfig MakeUnreplicatedConfig(std::string suite, std::string host);

}  // namespace wvote

#endif  // WVOTE_SRC_BASELINES_CONFIGS_H_
