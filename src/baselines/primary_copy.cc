#include "src/baselines/primary_copy.h"

#include <utility>

namespace wvote {
namespace {

Task<void> Propagate(RpcEndpoint* rpc, HostId backup, std::string suite, Version version,
                     std::string contents, Duration timeout) {
  RefreshReq req;
  req.suite = std::move(suite);
  req.version = version;
  req.contents = std::move(contents);
  (void)co_await rpc->Call<RefreshReq, RefreshResp>(backup, std::move(req), timeout);
}

}  // namespace

PrimaryCopyStore::PrimaryCopyStore(SuiteClient* client, std::vector<HostId> backup_hosts,
                                   PrimaryCopyReadMode read_mode)
    : client_(client), backups_(std::move(backup_hosts)), read_mode_(read_mode) {}

void PrimaryCopyStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("baseline.primary_copy.writes", labels, &writes);
  registry->RegisterCounter("baseline.primary_copy.reads_primary", labels, &reads_primary);
  registry->RegisterCounter("baseline.primary_copy.reads_backup", labels, &reads_backup);
  registry->RegisterCounter("baseline.primary_copy.propagations", labels, &propagations);
  registry->RegisterCounter("baseline.primary_copy.stale_backup_reads", labels,
                            &stale_backup_reads);
  registry->AddResetHook([this]() { Reset(); });
}

void PrimaryCopyStore::RegisterMetrics(MetricsRegistry* registry) {
  stats_.RegisterWith(registry, {{"host", client_->rpc()->host()->name()},
                                 {"suite", client_->config().suite_name}});
}

Task<Result<std::string>> PrimaryCopyStore::Read() {
  if (read_mode_ == PrimaryCopyReadMode::kPrimary) {
    ++stats_.reads_primary;
    co_return co_await client_->ReadOnce();
  }
  ++stats_.reads_backup;
  if (backups_.empty()) {
    co_return co_await client_->ReadOnce();
  }
  StaleReadReq req(client_->config().suite_name);
  Result<SuiteReadResp> resp = co_await client_->rpc()->Call<StaleReadReq, SuiteReadResp>(
      backups_.front(), std::move(req), Duration::Seconds(5));
  if (!resp.ok()) {
    co_return resp.status();
  }
  if (resp.value().version < last_written_version_) {
    ++stats_.stale_backup_reads;
  }
  co_return std::move(resp.value().contents);
}

Task<Status> PrimaryCopyStore::Write(std::string contents) {
  // Transactional install at the primary (single-representative suite), then
  // deferred propagation to every backup.
  SuiteTransaction txn = client_->Begin();
  Result<VersionedValue> current = co_await txn.ReadVersioned();
  if (!current.ok()) {
    co_await txn.Abort();
    co_return current.status();
  }
  Status st = txn.Write(contents);
  if (st.ok()) {
    st = co_await txn.Commit();
  } else {
    co_await txn.Abort();
  }
  if (!st.ok()) {
    co_return st;
  }
  ++stats_.writes;
  const Version installed = current.value().version + 1;
  last_written_version_ = std::max(last_written_version_, installed);
  for (HostId backup : backups_) {
    ++stats_.propagations;
    Spawn(Propagate(client_->rpc(), backup, client_->config().suite_name, installed,
                    contents, Duration::Seconds(5)));
  }
  co_return Status::Ok();
}

}  // namespace wvote
