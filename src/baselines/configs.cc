#include "src/baselines/configs.h"

namespace wvote {

SuiteConfig MakeRowaConfig(std::string suite, std::vector<std::string> hosts) {
  const int n = static_cast<int>(hosts.size());
  return SuiteConfig::MakeUniform(std::move(suite), std::move(hosts), /*r=*/1, /*w=*/n);
}

SuiteConfig MakeMajorityConfig(std::string suite, std::vector<std::string> hosts) {
  const int majority = static_cast<int>(hosts.size()) / 2 + 1;
  return SuiteConfig::MakeUniform(std::move(suite), std::move(hosts), majority, majority);
}

SuiteConfig MakeUnreplicatedConfig(std::string suite, std::string host) {
  return SuiteConfig::MakeUniform(std::move(suite), {std::move(host)}, 1, 1);
}

}  // namespace wvote
