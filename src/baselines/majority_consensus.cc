#include "src/baselines/majority_consensus.h"

#include <algorithm>
#include <utility>

#include "src/common/bytes.h"
#include "src/sim/join.h"

namespace wvote {
namespace {

std::string DataKey(const std::string& name) { return "tsdata/" + name; }

std::string SerializeTs(uint64_t ts, const std::string& contents) {
  BufferWriter w;
  w.WriteU64(ts);
  w.WriteString(contents);
  return w.Take();
}

bool ParseTs(const std::string& bytes, uint64_t* ts, std::string* contents) {
  BufferReader r(bytes);
  *ts = r.ReadU64();
  *contents = r.ReadString();
  return !r.failed() && r.AtEnd();
}

Task<Result<TsReadResp>> CallRead(RpcEndpoint* rpc, HostId to, std::string name,
                                  Duration timeout) {
  TsReadReq req(std::move(name));
  co_return co_await rpc->Call<TsReadReq, TsReadResp>(to, std::move(req), timeout);
}

Task<Result<TsWriteResp>> CallWrite(RpcEndpoint* rpc, HostId to, std::string name,
                                    uint64_t ts, std::string contents, Duration timeout) {
  TsWriteReq req(std::move(name), ts, std::move(contents));
  co_return co_await rpc->Call<TsWriteReq, TsWriteResp>(to, std::move(req), timeout);
}

}  // namespace

TimestampServer::TimestampServer(Network* net, Host* host, LatencyModel disk_write,
                                 LatencyModel disk_read)
    : rpc_(net, host), store_(net->sim(), host, disk_write, disk_read) {
  rpc_.Handle<TsReadReq, TsReadResp>(
      [this](HostId from, TsReadReq req) -> Task<Result<TsReadResp>> {
        Result<std::string> bytes = co_await store_.Read(DataKey(req.name));
        if (!bytes.ok()) {
          if (bytes.status().code() == StatusCode::kNotFound) {
            co_return TsReadResp{0, ""};  // never written
          }
          co_return bytes.status();
        }
        uint64_t ts = 0;
        std::string contents;
        if (!ParseTs(bytes.value(), &ts, &contents)) {
          co_return CorruptionError("bad timestamped value");
        }
        co_return TsReadResp{ts, std::move(contents)};
      });

  rpc_.Handle<TsWriteReq, TsWriteResp>(
      [this](HostId from, TsWriteReq req) -> Task<Result<TsWriteResp>> {
        // Apply iff newer (Thomas's timestamp resolution rule).
        uint64_t have = 0;
        Result<std::string> bytes = store_.ReadCommitted(DataKey(req.name));
        if (bytes.ok()) {
          std::string ignored;
          if (!ParseTs(bytes.value(), &have, &ignored)) {
            co_return CorruptionError("bad timestamped value");
          }
        }
        if (req.timestamp <= have) {
          co_return TsWriteResp{false};  // obsolete update; acks the quorum anyway
        }
        Status st =
            co_await store_.Write(DataKey(req.name), SerializeTs(req.timestamp, req.contents));
        if (!st.ok()) {
          co_return st;
        }
        co_return TsWriteResp{true};
      });
}

std::pair<uint64_t, std::string> TimestampServer::Current(const std::string& name) const {
  Result<std::string> bytes = store_.ReadCommitted(DataKey(name));
  if (!bytes.ok()) {
    return {0, ""};
  }
  uint64_t ts = 0;
  std::string contents;
  if (!ParseTs(bytes.value(), &ts, &contents)) {
    return {0, ""};
  }
  return {ts, std::move(contents)};
}

MajorityConsensusStore::MajorityConsensusStore(RpcEndpoint* rpc, std::string name,
                                               std::vector<HostId> replicas,
                                               Duration rpc_timeout)
    : rpc_(rpc), name_(std::move(name)), replicas_(std::move(replicas)),
      rpc_timeout_(rpc_timeout) {}

void MajorityConsensusStats::RegisterWith(MetricsRegistry* registry,
                                          const MetricLabels& labels) {
  registry->RegisterCounter("baseline.majority_consensus.reads", labels, &reads);
  registry->RegisterCounter("baseline.majority_consensus.writes", labels, &writes);
  registry->RegisterCounter("baseline.majority_consensus.read_quorum_failures", labels,
                            &read_quorum_failures);
  registry->RegisterCounter("baseline.majority_consensus.write_quorum_failures", labels,
                            &write_quorum_failures);
  registry->AddResetHook([this]() { Reset(); });
}

void MajorityConsensusStore::RegisterMetrics(MetricsRegistry* registry) {
  stats_.RegisterWith(registry,
                      {{"host", rpc_->host()->name()}, {"object", name_}});
}

uint64_t MajorityConsensusStore::NextTimestamp() {
  // (simulated time, host id) pairs are unique and monotone per client;
  // max() with last_ts_+1 keeps them monotone even within one microsecond.
  const uint64_t now = static_cast<uint64_t>(rpc_->sim()->Now().ToMicros());
  const uint64_t ts =
      std::max(last_ts_ + 1, (now << 12) | static_cast<uint64_t>(rpc_->host_id() & 0xfff));
  last_ts_ = ts;
  return ts;
}

Task<Result<std::string>> MajorityConsensusStore::Read() {
  ++stats_.reads;
  const size_t majority = replicas_.size() / 2 + 1;
  std::vector<Task<Result<TsReadResp>>> calls;
  calls.reserve(replicas_.size());
  for (HostId host : replicas_) {
    calls.push_back(CallRead(rpc_, host, name_, rpc_timeout_));
  }
  std::function<bool(const std::vector<Result<TsReadResp>>&)> enough =
      [majority](const std::vector<Result<TsReadResp>>& got) {
        size_t ok = 0;
        for (const Result<TsReadResp>& r : got) {
          if (r.ok()) {
            ++ok;
          }
        }
        return ok >= majority;
      };
  std::vector<Result<TsReadResp>> replies = co_await JoinUntil<Result<TsReadResp>>(
      rpc_->sim(), std::move(calls), std::move(enough));

  size_t ok = 0;
  uint64_t best_ts = 0;
  std::string best;
  for (Result<TsReadResp>& r : replies) {
    if (!r.ok()) {
      continue;
    }
    ++ok;
    if (r.value().timestamp >= best_ts) {
      best_ts = r.value().timestamp;
      best = std::move(r.value().contents);
    }
  }
  if (ok < majority) {
    ++stats_.read_quorum_failures;
    co_return UnavailableError("majority read quorum unavailable");
  }
  co_return best;
}

Task<Status> MajorityConsensusStore::Write(std::string contents) {
  ++stats_.writes;
  const size_t majority = replicas_.size() / 2 + 1;
  const uint64_t ts = NextTimestamp();
  std::vector<Task<Result<TsWriteResp>>> calls;
  calls.reserve(replicas_.size());
  for (HostId host : replicas_) {
    calls.push_back(CallWrite(rpc_, host, name_, ts, contents, rpc_timeout_));
  }
  std::function<bool(const std::vector<Result<TsWriteResp>>&)> enough =
      [majority](const std::vector<Result<TsWriteResp>>& got) {
        size_t ok = 0;
        for (const Result<TsWriteResp>& r : got) {
          if (r.ok()) {
            ++ok;
          }
        }
        return ok >= majority;
      };
  std::vector<Result<TsWriteResp>> replies = co_await JoinUntil<Result<TsWriteResp>>(
      rpc_->sim(), std::move(calls), std::move(enough));

  size_t ok = 0;
  for (const Result<TsWriteResp>& r : replies) {
    if (r.ok()) {
      ++ok;
    }
  }
  if (ok < majority) {
    ++stats_.write_quorum_failures;
    co_return UnavailableError("majority write quorum unavailable");
  }
  co_return Status::Ok();
}

}  // namespace wvote
