// Simulated-time primitives.
//
// All time in wvote is discrete simulated time measured in microseconds from
// the start of a run. Strong types keep durations and absolute instants from
// being mixed up; both are trivially copyable 64-bit values.

#ifndef WVOTE_SRC_COMMON_TIME_H_
#define WVOTE_SRC_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace wvote {

// A span of simulated time. Negative durations are representable (useful as
// arithmetic intermediates) but never scheduled.
class Duration {
 public:
  constexpr Duration() : micros_(0) {}

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000000); }
  static constexpr Duration Zero() { return Duration(0); }
  // A deadline far enough out to never fire within a run (~292k years).
  static constexpr Duration Infinite() { return Duration(INT64_MAX / 2); }

  constexpr int64_t ToMicros() const { return micros_; }
  constexpr double ToMillis() const { return static_cast<double>(micros_) / 1000.0; }
  constexpr double ToSeconds() const { return static_cast<double>(micros_) / 1e6; }

  std::string ToString() const;  // e.g. "75ms", "1.5s", "250us"

  constexpr Duration operator+(Duration other) const { return Duration(micros_ + other.micros_); }
  constexpr Duration operator-(Duration other) const { return Duration(micros_ - other.micros_); }
  constexpr Duration operator*(int64_t k) const { return Duration(micros_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(micros_ / k); }
  Duration& operator+=(Duration other) {
    micros_ += other.micros_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  explicit constexpr Duration(int64_t us) : micros_(us) {}
  int64_t micros_;
};

// An absolute instant of simulated time.
class TimePoint {
 public:
  constexpr TimePoint() : micros_(0) {}
  static constexpr TimePoint FromMicros(int64_t us) { return TimePoint(us); }

  constexpr int64_t ToMicros() const { return micros_; }
  constexpr double ToSeconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(micros_ + d.ToMicros());
  }
  constexpr Duration operator-(TimePoint other) const {
    return Duration::Micros(micros_ - other.micros_);
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  explicit constexpr TimePoint(int64_t us) : micros_(us) {}
  int64_t micros_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_COMMON_TIME_H_
