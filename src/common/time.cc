#include "src/common/time.h"

#include <cstdio>

namespace wvote {

std::string Duration::ToString() const {
  char buf[64];
  if (micros_ % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(micros_ / 1000000));
  } else if (micros_ % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(micros_ / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(micros_));
  }
  return buf;
}

}  // namespace wvote
