// Jittered exponential backoff for retry loops.
//
// Retrying transactions (wait-die refusals, commit conflicts, timeouts)
// back off before each attempt. A fixed or linear schedule synchronizes
// competing clients — they collide, back off by the same amount, and
// collide again. The standard fix is exponential growth with full jitter
// (see e.g. the AWS architecture blog's "Exponential Backoff and Jitter"):
// the delay for attempt k is drawn uniformly from
//
//   [base, min(cap, base * multiplier^(k+1))]
//
// so the window doubles every attempt (desynchronizing contenders fast)
// while the cap bounds worst-case added latency and the base floor keeps a
// retry from landing instantly back on a still-held lock.
//
// Header-only and templated on the RNG so src/common stays free of
// dependencies on the simulator layer; any type with
// `int64_t NextInRange(int64_t lo, int64_t hi)` (inclusive) works.

#ifndef WVOTE_SRC_COMMON_BACKOFF_H_
#define WVOTE_SRC_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "src/common/time.h"

namespace wvote {

struct BackoffPolicy {
  Duration base = Duration::Millis(1);   // floor of every delay
  Duration cap = Duration::Millis(250);  // ceiling of every delay
  double multiplier = 2.0;               // window growth per attempt

  BackoffPolicy() = default;
  BackoffPolicy(Duration b, Duration c, double m) : base(b), cap(c), multiplier(m) {}
};

// Delay before retry number `attempt` (0-based: pass 0 before the first
// retry). Uniform in [base, window] where the window grows by `multiplier`
// per attempt and saturates at `cap`.
template <typename RngT>
Duration JitteredBackoff(RngT& rng, int attempt, const BackoffPolicy& policy = {}) {
  const int64_t base_us = std::max<int64_t>(policy.base.ToMicros(), 1);
  const int64_t cap_us = std::max<int64_t>(policy.cap.ToMicros(), base_us);
  // Grow the window multiplicatively, saturating (not overflowing) at cap.
  double window_us = static_cast<double>(base_us);
  for (int i = 0; i <= attempt && window_us < static_cast<double>(cap_us); ++i) {
    window_us *= policy.multiplier;
  }
  const int64_t hi = std::min<int64_t>(cap_us, static_cast<int64_t>(window_us));
  return Duration::Micros(rng.NextInRange(base_us, std::max(base_us, hi)));
}

}  // namespace wvote

#endif  // WVOTE_SRC_COMMON_BACKOFF_H_
