#include "src/common/status.h"

namespace wvote {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kConflict:
      return "CONFLICT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (message_[0] != '\0') {
    out += ": ";
    out += message_;
  }
  return out;
}

Status UnavailableError(const std::string& message) {
  return Status(StatusCode::kUnavailable, message);
}
Status TimeoutError(const std::string& message) {
  return Status(StatusCode::kTimeout, message);
}
Status AbortedError(const std::string& message) {
  return Status(StatusCode::kAborted, message);
}
Status ConflictError(const std::string& message) {
  return Status(StatusCode::kConflict, message);
}
Status NotFoundError(const std::string& message) {
  return Status(StatusCode::kNotFound, message);
}
Status FailedPreconditionError(const std::string& message) {
  return Status(StatusCode::kFailedPrecondition, message);
}
Status InvalidArgumentError(const std::string& message) {
  return Status(StatusCode::kInvalidArgument, message);
}
Status CorruptionError(const std::string& message) {
  return Status(StatusCode::kCorruption, message);
}
Status InternalError(const std::string& message) {
  return Status(StatusCode::kInternal, message);
}

}  // namespace wvote
