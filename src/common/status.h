// Status and Result<T>: error propagation without exceptions.
//
// The wvote library reports recoverable failures (unavailable quorum, lock
// conflicts, timeouts, crashed hosts) through Status values rather than
// exceptions, matching common systems-code practice. Result<T> couples a
// Status with a payload for functions that produce a value.
//
// Status is deliberately TRIVIALLY COPYABLE: the code plus a fixed inline
// message buffer. This keeps error paths allocation-free and makes Status
// values safe to pass through coroutine machinery even under the GCC 12
// parameter-copy bugs documented in src/sim/task.h (a bitwise copy of a
// trivially copyable value is always correct).

#ifndef WVOTE_SRC_COMMON_STATUS_H_
#define WVOTE_SRC_COMMON_STATUS_H_

#include <cstring>
#include <string>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace wvote {

// Canonical error space for the library. Kept deliberately small: each code
// maps to a distinct caller reaction.
enum class StatusCode {
  kOk = 0,
  kUnavailable,         // not enough live representatives for a quorum
  kTimeout,             // an RPC or quorum gather exceeded its deadline
  kAborted,             // transaction aborted (deadlock avoidance, crash, ...)
  kConflict,            // lock conflict that the caller may retry
  kNotFound,            // no such suite / object / host
  kFailedPrecondition,  // operation illegal in current state
  kInvalidArgument,     // malformed configuration or request
  kCorruption,          // stable storage failed integrity checks
  kInternal,            // invariant violation surfaced as an error
};

// Human-readable name for a status code ("OK", "UNAVAILABLE", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Trivially copyable; diagnostic messages longer
// than the inline buffer are truncated.
class [[nodiscard]] Status {
 public:
  static constexpr size_t kMaxMessage = 111;  // bytes, excluding terminator

  Status() : code_(StatusCode::kOk) { message_[0] = '\0'; }

  Status(StatusCode code, const char* message) : code_(code) { SetMessage(message); }
  Status(StatusCode code, const std::string& message) : code_(code) {
    SetMessage(message.c_str());
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  std::string message() const { return message_; }
  const char* message_c_str() const { return message_; }

  // "CODE: message" rendering for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  void SetMessage(const char* message) {
    std::strncpy(message_, message, kMaxMessage);
    message_[kMaxMessage] = '\0';
  }

  StatusCode code_;
  char message_[kMaxMessage + 1];
};

static_assert(std::is_trivially_copyable_v<Status>);

Status UnavailableError(const std::string& message);
Status TimeoutError(const std::string& message);
Status AbortedError(const std::string& message);
Status ConflictError(const std::string& message);
Status NotFoundError(const std::string& message);
Status FailedPreconditionError(const std::string& message);
Status InvalidArgumentError(const std::string& message);
Status CorruptionError(const std::string& message);
Status InternalError(const std::string& message);

// A value of type T or a non-OK Status. Dereferencing a failed Result aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(status) {  // NOLINT(google-explicit-constructor)
    WVOTE_CHECK_MSG(!status.ok(), "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const { return ok() ? Status::Ok() : std::get<Status>(rep_); }

  T& value() & {
    WVOTE_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(rep_);
  }
  const T& value() const& {
    WVOTE_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(rep_);
  }
  T&& value() && {
    WVOTE_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagates a non-OK status to the caller. Usable in functions returning
// Status or any type constructible from Status. Coroutines use
// WVOTE_CO_RETURN_IF_ERROR.
#define WVOTE_RETURN_IF_ERROR(expr)      \
  do {                                   \
    ::wvote::Status _st = (expr);        \
    if (!_st.ok()) {                     \
      return _st;                        \
    }                                    \
  } while (0)

#define WVOTE_CO_RETURN_IF_ERROR(expr)   \
  do {                                   \
    ::wvote::Status _st = (expr);        \
    if (!_st.ok()) {                     \
      co_return _st;                     \
    }                                    \
  } while (0)

}  // namespace wvote

#endif  // WVOTE_SRC_COMMON_STATUS_H_
