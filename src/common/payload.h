// SharedPayload: immutable, reference-counted bulk bytes.
//
// A committed suite value travels from the client through the coordinator,
// the net layer, and every write-quorum participant's prepare message. The
// bytes never change after serialization, so the hops should share one
// buffer instead of copying it per quorum member and per message. This
// wrapper keeps value semantics at every call site (construct from a
// std::string, compare against one, read through str()) while copies of the
// payload itself only bump a reference count.
//
// The payload is deliberately read-only: there is no mutable accessor, so a
// buffer can be shared across concurrently in-flight messages safely.

#ifndef WVOTE_SRC_COMMON_PAYLOAD_H_
#define WVOTE_SRC_COMMON_PAYLOAD_H_

#include <memory>
#include <string>
#include <utility>

namespace wvote {

class SharedPayload {
 public:
  SharedPayload() = default;
  // Implicit by design: every existing call site that built a WriteIntent
  // from a std::string keeps compiling, but now allocates the buffer once.
  SharedPayload(std::string bytes)  // NOLINT(google-explicit-constructor)
      : bytes_(std::make_shared<const std::string>(std::move(bytes))) {}
  SharedPayload(const char* bytes)  // NOLINT(google-explicit-constructor)
      : bytes_(std::make_shared<const std::string>(bytes)) {}
  explicit SharedPayload(std::shared_ptr<const std::string> bytes)
      : bytes_(std::move(bytes)) {}

  const std::string& str() const { return bytes_ ? *bytes_ : Empty(); }
  size_t size() const { return bytes_ ? bytes_->size() : 0; }
  bool empty() const { return size() == 0; }
  // How many intents/messages currently share the buffer (0 for the empty
  // default payload); tests use this to prove a commit serialized once.
  long use_count() const { return bytes_ ? bytes_.use_count() : 0; }

  friend bool operator==(const SharedPayload& a, const SharedPayload& b) {
    return a.str() == b.str();
  }
  friend bool operator==(const SharedPayload& a, const std::string& b) {
    return a.str() == b;
  }
  friend bool operator==(const std::string& a, const SharedPayload& b) {
    return a == b.str();
  }

 private:
  static const std::string& Empty() {
    static const std::string empty;
    return empty;
  }

  std::shared_ptr<const std::string> bytes_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_COMMON_PAYLOAD_H_
