// Minimal binary serialization: fixed-width little-endian fields and
// length-prefixed strings. Used for everything that is "on disk" in the
// simulated stable storage (file contents, suite prefixes, intention logs),
// so that recovery code genuinely re-parses bytes rather than sharing live
// pointers with the pre-crash state.

#ifndef WVOTE_SRC_COMMON_BYTES_H_
#define WVOTE_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace wvote {

class BufferWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void WriteRaw(const void* p, size_t n) {
    // Host is little-endian on every supported target; a big-endian port
    // would byte-swap here.
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

// Reader with explicit failure state: any read past the end (or a bad length
// prefix) sets failed() and returns zero values, so parsers can check once
// at the end instead of after every field.
class BufferReader {
 public:
  explicit BufferReader(const std::string& data) : data_(data) {}

  uint8_t ReadU8() {
    uint8_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  uint32_t ReadU32() {
    uint32_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  uint64_t ReadU64() {
    uint64_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  int64_t ReadI64() {
    int64_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  double ReadDouble() {
    double v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  bool ReadBool() { return ReadU8() != 0; }

  std::string ReadString() {
    const uint32_t n = ReadU32();
    if (failed_ || pos_ + n > data_.size()) {
      failed_ = true;
      return std::string();
    }
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  bool failed() const { return failed_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  void ReadRaw(void* p, size_t n) {
    if (failed_ || pos_ + n > data_.size()) {
      failed_ = true;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  const std::string& data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// FNV-1a 64-bit hash; checksums for the stable-storage slot headers.
inline uint64_t Fnv1a64(const std::string& data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace wvote

#endif  // WVOTE_SRC_COMMON_BYTES_H_
