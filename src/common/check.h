// Lightweight invariant-checking macros for the wvote library.
//
// WVOTE_CHECK fires in every build type; it guards invariants whose violation
// means the process state is no longer trustworthy (quorum math, storage
// atomicity, event-queue ordering). WVOTE_DCHECK compiles away in NDEBUG
// builds and is for expensive sanity checks on hot paths.

#ifndef WVOTE_SRC_COMMON_CHECK_H_
#define WVOTE_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace wvote {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace wvote

#define WVOTE_CHECK(expr)                                 \
  do {                                                    \
    if (!(expr)) {                                        \
      ::wvote::CheckFailed(__FILE__, __LINE__, #expr);    \
    }                                                     \
  } while (0)

#define WVOTE_CHECK_MSG(expr, msg)                        \
  do {                                                    \
    if (!(expr)) {                                        \
      ::wvote::CheckFailed(__FILE__, __LINE__, msg);      \
    }                                                     \
  } while (0)

#ifdef NDEBUG
#define WVOTE_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define WVOTE_DCHECK(expr) WVOTE_CHECK(expr)
#endif

#endif  // WVOTE_SRC_COMMON_CHECK_H_
