// Wire message for the simulated network.
//
// Payloads are std::any: the RPC layer (src/rpc) is the only producer and
// consumer and unpacks them into typed request/response structs. approx_bytes
// lets higher layers attribute a wire size for traffic accounting without the
// simulator serializing anything.

#ifndef WVOTE_SRC_NET_MESSAGE_H_
#define WVOTE_SRC_NET_MESSAGE_H_

#include <any>
#include <cstdint>
#include <memory>
#include <utility>

namespace wvote {

// Dense host identifier assigned by Network::AddHost in creation order.
using HostId = int32_t;
inline constexpr HostId kInvalidHost = -1;

struct Message {
  HostId from = kInvalidHost;
  HostId to = kInvalidHost;
  uint64_t id = 0;  // unique per network, for tracing
  size_t approx_bytes = 0;
  std::any payload;
};

// Payload wrapper for a message the network delivers more than once (a
// duplicating link). Instead of deep-copying the std::any at send time, both
// in-flight copies share one body; the network unwraps at delivery, and only
// a copy that is not the last holder of the body pays for a deep copy. A
// duplicate whose sibling was dropped (destination crashed mid-flight) is
// delivered by move, copying nothing.
struct SharedDupPayload {
  std::shared_ptr<std::any> body;
};

// Replaces a SharedDupPayload wrapper with the body it carries; messages
// with ordinary payloads pass through untouched. Called by the network just
// before Host::Deliver, so payload consumers only ever see the plain type.
inline void UnwrapSharedPayload(Message& msg) {
  auto* shared = std::any_cast<SharedDupPayload>(&msg.payload);
  if (shared == nullptr) {
    return;
  }
  std::shared_ptr<std::any> body = std::move(shared->body);
  if (body.use_count() == 1) {
    msg.payload = std::move(*body);
  } else {
    msg.payload = *body;
  }
}

}  // namespace wvote

#endif  // WVOTE_SRC_NET_MESSAGE_H_
