// Wire message for the simulated network.
//
// Payloads are std::any: the RPC layer (src/rpc) is the only producer and
// consumer and unpacks them into typed request/response structs. approx_bytes
// lets higher layers attribute a wire size for traffic accounting without the
// simulator serializing anything.

#ifndef WVOTE_SRC_NET_MESSAGE_H_
#define WVOTE_SRC_NET_MESSAGE_H_

#include <any>
#include <cstdint>

namespace wvote {

// Dense host identifier assigned by Network::AddHost in creation order.
using HostId = int32_t;
inline constexpr HostId kInvalidHost = -1;

struct Message {
  HostId from = kInvalidHost;
  HostId to = kInvalidHost;
  uint64_t id = 0;  // unique per network, for tracing
  size_t approx_bytes = 0;
  std::any payload;
};

}  // namespace wvote

#endif  // WVOTE_SRC_NET_MESSAGE_H_
