#include "src/net/host.h"

#include <utility>

#include "src/common/check.h"

namespace wvote {

Host::Host(HostId id, std::string name, Rng rng)
    : id_(id), name_(std::move(name)), rng_(rng) {}

void Host::SetMessageHandler(std::function<void(Message)> handler) {
  WVOTE_CHECK_MSG(!handler_, "host inbox already claimed");
  handler_ = std::move(handler);
}

void Host::Crash() {
  if (!up_) {
    return;
  }
  up_ = false;
  ++crash_epoch_;
  if (trace_ != nullptr) {
    trace_->Record(id_, TraceKind::kHostCrashed, name_);
  }
  for (const auto& fn : crash_listeners_) {
    fn();
  }
}

void Host::Restart() {
  if (up_) {
    return;
  }
  up_ = true;
  if (trace_ != nullptr) {
    trace_->Record(id_, TraceKind::kHostRestarted, name_);
  }
  for (const auto& fn : restart_listeners_) {
    fn();
  }
}

void Host::Deliver(Message msg) {
  if (!up_ || !handler_) {
    return;
  }
  handler_(std::move(msg));
}

}  // namespace wvote
