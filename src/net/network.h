// Simulated point-to-point network.
//
// Models the internetwork of Gifford's prototype: every pair of hosts has a
// (directed) link with a latency distribution and an independent loss
// probability. Partitions split hosts into groups; messages between groups
// are silently dropped, which is exactly the failure mode weighted voting's
// quorum intersection defends against.
//
// Delivery rules:
//   * a message from a down host is not sent;
//   * partition membership and loss are evaluated at send time, destination
//     liveness again at delivery time (a host that crashes mid-flight loses
//     the message);
//   * per-link delivery is FIFO when the latency model is fixed; jittered
//     models may reorder, as real datagram networks do.

#ifndef WVOTE_SRC_NET_NETWORK_H_
#define WVOTE_SRC_NET_NETWORK_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/host.h"
#include "src/net/message.h"
#include "src/obs/metrics.h"
#include "src/sim/latency.h"
#include "src/sim/simulator.h"
#include "src/trace/span.h"
#include "src/trace/trace.h"

namespace wvote {

struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t dropped_source_down = 0;
  uint64_t dropped_dest_down = 0;
  uint64_t dropped_partition = 0;
  uint64_t dropped_loss = 0;
  uint64_t duplicated = 0;    // messages delivered twice by a duplicating link
  uint64_t delay_spikes = 0;  // deliveries that drew a latency spike
  uint64_t bytes_sent = 0;

  void Reset() { *this = NetworkStats{}; }
  // Registers every field as `net.network.*{labels}`; this struct must
  // outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

// Per-link fault knobs beyond the latency model. Datagram networks drop,
// duplicate, and delay; weighted voting must survive all three. A duplicate
// is a second, independently delayed delivery of the same message (the RPC
// layer must be idempotent against it); a delay spike adds a fixed penalty
// to a delivery with the given probability (models bufferbloat / GC pauses
// without touching the base latency model).
struct LinkKnobs {
  double loss_probability = 0.0;
  double dup_probability = 0.0;
  double delay_spike_probability = 0.0;
  Duration delay_spike = Duration::Millis(50);
};

class Network {
 public:
  explicit Network(Simulator* sim);

  // Adds a host; latency of links to/from it defaults to default_link_.
  Host* AddHost(const std::string& name);

  Host* host(HostId id);
  const Host* host(HostId id) const;
  Host* FindHost(const std::string& name);
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  Simulator* sim() { return sim_; }

  // Link configuration. Directed overrides take precedence over the default.
  void SetDefaultLink(LatencyModel latency, double loss_probability = 0.0);
  void SetLink(HostId from, HostId to, LatencyModel latency, double loss_probability = 0.0);
  // Convenience: configures both directions.
  void SetSymmetricLink(HostId a, HostId b, LatencyModel latency, double loss_probability = 0.0);

  // Full-knob overloads: latency plus loss/duplication/delay-spike behavior.
  void SetDefaultLink(LatencyModel latency, LinkKnobs knobs);
  void SetLink(HostId from, HostId to, LatencyModel latency, LinkKnobs knobs);
  void SetSymmetricLink(HostId a, HostId b, LatencyModel latency, LinkKnobs knobs);
  // Swaps the fault knobs on every link (default and overrides) while
  // preserving each link's latency model; how the chaos nemesis flips
  // network weather mid-run without knowing the topology.
  void SetAllLinkKnobs(LinkKnobs knobs);
  const LinkKnobs& default_link_knobs() const { return default_link_.knobs; }

  // Latency a sender would pay to reach `to` in expectation; used by quorum
  // selection to rank representatives by access cost.
  Duration ExpectedLatency(HostId from, HostId to) const;

  // Partitions. Each group is a set of host ids; hosts absent from every
  // group form one implicit extra group. Messages cross groups only after
  // HealPartition().
  void Partition(const std::vector<std::vector<HostId>>& groups);
  void HealPartition();
  bool Reachable(HostId from, HostId to) const;

  // Fire-and-forget datagram send. Routing/delivery failures are silent, as
  // on a real network; reliability is the RPC layer's job.
  void Send(HostId from, HostId to, std::any payload, size_t approx_bytes = 128);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Registers this network's counters (unlabeled: one network per sim).
  void RegisterMetrics(MetricsRegistry* registry);

  // Optional protocol tracing; events from hosts and higher layers flow
  // into the same log. The log must outlive the network.
  void SetTraceLog(TraceLog* trace);
  TraceLog* trace() { return trace_; }

  // Optional causal span tracer, shared the same way the TraceLog is: the
  // RPC layer and storage/txn components reach it through the network they
  // already hold. Null (the default) keeps every tracing call a no-op.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() { return tracer_; }

 private:
  struct Link {
    LatencyModel latency;
    LinkKnobs knobs;
  };

  // Messages bound for the same host at the same instant, delivered by one
  // simulator event. Batches are pooled so steady-state delivery reuses
  // their vector capacity instead of allocating per message.
  struct DeliveryBatch {
    std::vector<Message> msgs;
  };

  const Link& LinkFor(HostId from, HostId to) const;
  void ScheduleDelivery(Host* dst, Message msg, Duration delay);
  DeliveryBatch* AcquireBatch();
  void RecycleBatch(DeliveryBatch* batch);

  Simulator* sim_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::map<std::string, HostId> host_index_;  // name -> id, built by AddHost
  Link default_link_;
  std::map<std::pair<HostId, HostId>, Link> link_overrides_;
  std::vector<int> partition_group_;  // empty: fully connected
  uint64_t next_message_id_ = 1;
  TraceLog* trace_ = nullptr;
  Tracer* tracer_ = nullptr;
  NetworkStats stats_;

  // The most recently scheduled, not-yet-fired delivery batch. A new
  // delivery may join it only if it targets the same host at the same
  // timestamp AND the simulator has issued no event seq since the batch's
  // own event — the folded delivery is then indistinguishable from the
  // event it would have been, so coalescing cannot reorder anything.
  std::vector<std::unique_ptr<DeliveryBatch>> batch_pool_;
  std::vector<DeliveryBatch*> free_batches_;
  DeliveryBatch* open_batch_ = nullptr;
  HostId open_batch_dst_ = kInvalidHost;
  TimePoint open_batch_at_;
  uint64_t open_batch_next_seq_ = 0;
};

}  // namespace wvote

#endif  // WVOTE_SRC_NET_NETWORK_H_
