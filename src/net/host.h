// A simulated host: a named endpoint that can crash and restart.
//
// Hosts model Gifford's file-server and client machines. A host that is down
// receives no messages and loses all volatile state; components that keep
// volatile state (lock tables, in-progress transactions) register crash
// listeners to clear it, and recovery listeners to replay their stable logs
// on restart.

#ifndef WVOTE_SRC_NET_HOST_H_
#define WVOTE_SRC_NET_HOST_H_

#include <functional>
#include <string>
#include <vector>

#include "src/net/message.h"
#include "src/sim/random.h"
#include "src/trace/trace.h"

namespace wvote {

class Network;

class Host {
 public:
  Host(HostId id, std::string name, Rng rng);

  HostId id() const { return id_; }
  const std::string& name() const { return name_; }
  bool up() const { return up_; }
  Rng& rng() { return rng_; }

  // Delivered messages are routed to this handler. Only one component (the
  // RPC endpoint) may claim a host's inbox.
  void SetMessageHandler(std::function<void(Message)> handler);
  bool has_message_handler() const { return static_cast<bool>(handler_); }

  // Crash: volatile state vanishes, in-flight inbound messages are dropped.
  // Restart: recovery listeners run (replay stable logs) before any new
  // message is delivered.
  void Crash();
  void Restart();

  void AddCrashListener(std::function<void()> fn) { crash_listeners_.push_back(std::move(fn)); }
  void AddRestartListener(std::function<void()> fn) {
    restart_listeners_.push_back(std::move(fn));
  }

  // Monotonic count of times this host has crashed; lets servers detect that
  // a crash happened between two points in a coroutine ("epoch check").
  uint64_t crash_epoch() const { return crash_epoch_; }

 private:
  friend class Network;
  void Deliver(Message msg);
  void SetTraceLog(TraceLog* trace) { trace_ = trace; }

  const HostId id_;
  const std::string name_;
  bool up_ = true;
  uint64_t crash_epoch_ = 0;
  Rng rng_;
  TraceLog* trace_ = nullptr;
  std::function<void(Message)> handler_;
  std::vector<std::function<void()>> crash_listeners_;
  std::vector<std::function<void()>> restart_listeners_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_NET_HOST_H_
