#include "src/net/network.h"

#include <utility>

#include "src/common/check.h"

namespace wvote {

Network::Network(Simulator* sim) : sim_(sim) {
  default_link_.latency = LatencyModel::Fixed(Duration::Millis(1));
}

void NetworkStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("net.network.messages_sent", labels, &messages_sent);
  registry->RegisterCounter("net.network.messages_delivered", labels, &messages_delivered);
  registry->RegisterCounter("net.network.dropped_source_down", labels, &dropped_source_down);
  registry->RegisterCounter("net.network.dropped_dest_down", labels, &dropped_dest_down);
  registry->RegisterCounter("net.network.dropped_partition", labels, &dropped_partition);
  registry->RegisterCounter("net.network.dropped_loss", labels, &dropped_loss);
  registry->RegisterCounter("net.network.duplicated", labels, &duplicated);
  registry->RegisterCounter("net.network.delay_spikes", labels, &delay_spikes);
  registry->RegisterCounter("net.network.bytes_sent", labels, &bytes_sent);
  registry->AddResetHook([this]() { Reset(); });
}

void Network::RegisterMetrics(MetricsRegistry* registry) {
  stats_.RegisterWith(registry);
  registry->RegisterGauge("net.network.num_hosts", {},
                          [this]() { return static_cast<double>(hosts_.size()); });
}

Host* Network::AddHost(const std::string& name) {
  const HostId id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(std::make_unique<Host>(id, name, sim_->rng().Fork()));
  hosts_.back()->SetTraceLog(trace_);
  // First registration wins, matching what a linear scan would find.
  host_index_.emplace(name, id);
  return hosts_.back().get();
}

void Network::SetTraceLog(TraceLog* trace) {
  trace_ = trace;
  for (auto& host : hosts_) {
    host->SetTraceLog(trace);
  }
}

Host* Network::host(HostId id) {
  WVOTE_CHECK(id >= 0 && id < num_hosts());
  return hosts_[static_cast<size_t>(id)].get();
}

const Host* Network::host(HostId id) const {
  WVOTE_CHECK(id >= 0 && id < num_hosts());
  return hosts_[static_cast<size_t>(id)].get();
}

Host* Network::FindHost(const std::string& name) {
  auto it = host_index_.find(name);
  return it == host_index_.end() ? nullptr : hosts_[static_cast<size_t>(it->second)].get();
}

void Network::SetDefaultLink(LatencyModel latency, double loss_probability) {
  LinkKnobs knobs;
  knobs.loss_probability = loss_probability;
  SetDefaultLink(latency, knobs);
}

void Network::SetLink(HostId from, HostId to, LatencyModel latency, double loss_probability) {
  LinkKnobs knobs;
  knobs.loss_probability = loss_probability;
  SetLink(from, to, latency, knobs);
}

void Network::SetSymmetricLink(HostId a, HostId b, LatencyModel latency,
                               double loss_probability) {
  SetLink(a, b, latency, loss_probability);
  SetLink(b, a, latency, loss_probability);
}

void Network::SetDefaultLink(LatencyModel latency, LinkKnobs knobs) {
  default_link_ = Link{latency, knobs};
}

void Network::SetLink(HostId from, HostId to, LatencyModel latency, LinkKnobs knobs) {
  link_overrides_[{from, to}] = Link{latency, knobs};
}

void Network::SetSymmetricLink(HostId a, HostId b, LatencyModel latency, LinkKnobs knobs) {
  SetLink(a, b, latency, knobs);
  SetLink(b, a, latency, knobs);
}

void Network::SetAllLinkKnobs(LinkKnobs knobs) {
  default_link_.knobs = knobs;
  for (auto& [pair, link] : link_overrides_) {
    link.knobs = knobs;
  }
}

const Network::Link& Network::LinkFor(HostId from, HostId to) const {
  auto it = link_overrides_.find({from, to});
  return it != link_overrides_.end() ? it->second : default_link_;
}

Duration Network::ExpectedLatency(HostId from, HostId to) const {
  if (from == to) {
    return Duration::Zero();
  }
  return LinkFor(from, to).latency.Mean();
}

void Network::Partition(const std::vector<std::vector<HostId>>& groups) {
  partition_group_.assign(hosts_.size(), 0);
  // Hosts not named in any group share implicit group 0; named groups are
  // numbered from 1.
  int group_no = 1;
  for (const auto& group : groups) {
    for (HostId id : group) {
      WVOTE_CHECK(id >= 0 && id < num_hosts());
      partition_group_[static_cast<size_t>(id)] = group_no;
    }
    ++group_no;
  }
}

void Network::HealPartition() { partition_group_.clear(); }

bool Network::Reachable(HostId from, HostId to) const {
  if (partition_group_.empty() || from == to) {
    return true;
  }
  return partition_group_[static_cast<size_t>(from)] ==
         partition_group_[static_cast<size_t>(to)];
}

void Network::Send(HostId from, HostId to, std::any payload, size_t approx_bytes) {
  Host* src = host(from);
  Host* dst = host(to);
  ++stats_.messages_sent;
  stats_.bytes_sent += approx_bytes;

  if (!src->up()) {
    ++stats_.dropped_source_down;
    if (trace_ != nullptr) {
      trace_->Record(from, TraceKind::kMessageDropped, "source down");
    }
    return;
  }
  if (!Reachable(from, to)) {
    ++stats_.dropped_partition;
    if (trace_ != nullptr) {
      trace_->Record(from, TraceKind::kMessageDropped,
                     "partitioned from " + host(to)->name());
    }
    return;
  }
  const Link& link = LinkFor(from, to);
  if (link.knobs.loss_probability > 0.0 &&
      sim_->rng().NextBernoulli(link.knobs.loss_probability)) {
    ++stats_.dropped_loss;
    if (trace_ != nullptr) {
      trace_->Record(from, TraceKind::kMessageDropped, "loss");
    }
    return;
  }

  Message msg;
  msg.from = from;
  msg.to = to;
  msg.id = next_message_id_++;
  msg.approx_bytes = approx_bytes;
  msg.payload = std::move(payload);

  if (from == to) {
    // Loopback: no wire, no wire faults.
    ScheduleDelivery(dst, std::move(msg), Duration::Zero());
    return;
  }

  Duration delay = link.latency.Sample(sim_->rng());
  const LinkKnobs& knobs = link.knobs;
  if (knobs.delay_spike_probability > 0.0 &&
      sim_->rng().NextBernoulli(knobs.delay_spike_probability)) {
    ++stats_.delay_spikes;
    delay += knobs.delay_spike;
  }
  if (knobs.dup_probability > 0.0 && sim_->rng().NextBernoulli(knobs.dup_probability)) {
    // Deliver a second copy with its own latency sample; the copies race
    // and may reorder, exactly as duplicated datagrams do. The copies share
    // one payload body instead of deep-copying the std::any here; delivery
    // unwraps, and at most one of the two pays for a copy then.
    ++stats_.duplicated;
    auto body = std::make_shared<std::any>(std::move(msg.payload));
    Message copy = msg;  // payload already moved out; field copy is cheap
    copy.payload = SharedDupPayload{body};
    msg.payload = SharedDupPayload{std::move(body)};
    ScheduleDelivery(dst, std::move(copy), link.latency.Sample(sim_->rng()));
  }
  ScheduleDelivery(dst, std::move(msg), delay);
}

Network::DeliveryBatch* Network::AcquireBatch() {
  if (free_batches_.empty()) {
    batch_pool_.push_back(std::make_unique<DeliveryBatch>());
    return batch_pool_.back().get();
  }
  DeliveryBatch* batch = free_batches_.back();
  free_batches_.pop_back();
  batch->msgs.clear();  // keeps capacity
  return batch;
}

void Network::RecycleBatch(DeliveryBatch* batch) { free_batches_.push_back(batch); }

void Network::ScheduleDelivery(Host* dst, Message msg, Duration delay) {
  const TimePoint at = sim_->Now() + delay;
  if (open_batch_ != nullptr && open_batch_dst_ == dst->id() && open_batch_at_ == at &&
      sim_->next_seq() == open_batch_next_seq_) {
    // Nothing has been scheduled since the open batch's event was created,
    // so this delivery's event would carry the very next seq and fire
    // immediately after the batch at the same timestamp. Folding it into
    // the batch is therefore indistinguishable from scheduling it.
    open_batch_->msgs.push_back(std::move(msg));
    sim_->NoteCoalesced();
    return;
  }
  DeliveryBatch* batch = AcquireBatch();
  batch->msgs.push_back(std::move(msg));
  sim_->Schedule(delay, [this, dst, batch]() {
    if (open_batch_ == batch) {
      open_batch_ = nullptr;  // firing now; nothing may join anymore
    }
    for (Message& m : batch->msgs) {
      // Liveness is rechecked per message: handling an earlier message in
      // this batch may crash the host, which must drop the rest exactly as
      // it would have dropped their individual delivery events.
      if (!dst->up()) {
        ++stats_.dropped_dest_down;
        if (trace_ != nullptr) {
          trace_->Record(dst->id(), TraceKind::kMessageDropped, "destination down");
        }
        continue;
      }
      ++stats_.messages_delivered;
      UnwrapSharedPayload(m);
      dst->Deliver(std::move(m));
    }
    RecycleBatch(batch);
  });
  open_batch_ = batch;
  open_batch_dst_ = dst->id();
  open_batch_at_ = at;
  open_batch_next_seq_ = sim_->next_seq();
}

}  // namespace wvote
